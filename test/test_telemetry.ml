(* Telemetry subsystem: span nesting, counter accumulation, the shape
   of the JSON-lines sink output, and non-interference — the default
   no-op sink must leave placer results byte-identical. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let span_tests =
  [
    Alcotest.test_case "spans nest and record their path" `Quick (fun () ->
        Telemetry.reset ();
        Telemetry.Span.with_ ~name:"outer" (fun () ->
            Telemetry.Span.with_ ~name:"inner" (fun () ->
                ignore (Sys.opaque_identity 1)));
        let spans = Telemetry.spans () in
        Alcotest.(check int) "two spans" 2 (List.length spans);
        let find n = List.find (fun s -> s.Telemetry.span_name = n) spans in
        Alcotest.(check (list string)) "inner path" [ "outer" ]
          (find "inner").Telemetry.path;
        Alcotest.(check (list string)) "outer path" []
          (find "outer").Telemetry.path;
        (* completion order: the inner span finishes first *)
        Alcotest.(check string) "order" "inner"
          (List.hd spans).Telemetry.span_name;
        Alcotest.(check bool) "outer encloses inner" true
          ((find "outer").Telemetry.dur_s >= (find "inner").Telemetry.dur_s));
    Alcotest.test_case "timed duration equals the recorded total" `Quick
      (fun () ->
        Telemetry.reset ();
        let (), dt =
          Telemetry.Span.timed ~name:"work" (fun () ->
              let acc = ref 0.0 in
              for i = 1 to 10_000 do
                acc := !acc +. sqrt (float_of_int i)
              done;
              ignore !acc)
        in
        Alcotest.(check int) "count" 1 (Telemetry.span_count "work");
        Alcotest.(check (float 1e-9)) "total" dt (Telemetry.span_total "work");
        Alcotest.(check (float 0.0)) "absent span" 0.0
          (Telemetry.span_total "nothing-ran"));
    Alcotest.test_case "a span is recorded even when the thunk raises"
      `Quick (fun () ->
        Telemetry.reset ();
        (try
           Telemetry.Span.with_ ~name:"boom" (fun () -> failwith "boom")
         with Failure _ -> ());
        Alcotest.(check int) "recorded" 1 (Telemetry.span_count "boom");
        (* the stack unwound: a following span is top-level again *)
        Telemetry.Span.with_ ~name:"after" (fun () -> ());
        let after =
          List.find
            (fun s -> s.Telemetry.span_name = "after")
            (Telemetry.spans ())
        in
        Alcotest.(check (list string)) "clean stack" [] after.Telemetry.path);
  ]

let counter_tests =
  [
    Alcotest.test_case "counters accumulate and reset" `Quick (fun () ->
        Telemetry.reset ();
        let c = Telemetry.Counter.make "test.counter" in
        Telemetry.Counter.incr c;
        Telemetry.Counter.add c 41;
        Alcotest.(check int) "value" 42 (Telemetry.Counter.value c);
        Alcotest.(check string) "name" "test.counter"
          (Telemetry.Counter.name c);
        (* handles are interned by name *)
        let c' = Telemetry.Counter.make "test.counter" in
        Telemetry.Counter.incr c';
        Alcotest.(check int) "interned" 43 (Telemetry.Counter.value c);
        Alcotest.(check bool) "listed" true
          (List.assoc_opt "test.counter" (Telemetry.counters ()) = Some 43);
        Telemetry.reset ();
        Alcotest.(check int) "reset to zero" 0 (Telemetry.Counter.value c));
    Alcotest.test_case "gauges are last-write-wins and reset to nan" `Quick
      (fun () ->
        Telemetry.reset ();
        let g = Telemetry.Gauge.make "test.gauge" in
        Telemetry.Gauge.set g 1.5;
        Telemetry.Gauge.set g 0.25;
        Alcotest.(check (float 0.0)) "value" 0.25 (Telemetry.Gauge.value g);
        Telemetry.reset ();
        Alcotest.(check bool) "nan after reset" true
          (Float.is_nan (Telemetry.Gauge.value g)));
  ]

let sink_tests =
  [
    Alcotest.test_case "jsonl sink emits one typed object per line" `Quick
      (fun () ->
        let file = Filename.temp_file "telemetry" ".jsonl" in
        let oc = open_out file in
        Telemetry.reset ();
        Telemetry.set_sink (Telemetry.jsonl oc);
        let c = Telemetry.Counter.make "j.count" in
        Telemetry.Counter.add c 3;
        Telemetry.Gauge.set (Telemetry.Gauge.make "j.gauge") 0.5;
        Telemetry.Span.with_ ~name:"gp" (fun () ->
            Telemetry.Span.with_ ~name:"dp \"axis\"" (fun () -> ()));
        Telemetry.flush ();
        Telemetry.set_sink Telemetry.noop;
        close_out oc;
        let ic = open_in file in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        close_in ic;
        Sys.remove file;
        let lines = List.rev !lines in
        List.iter
          (fun l ->
            let n = String.length l in
            Alcotest.(check bool) "braced object" true
              (n > 2 && l.[0] = '{' && l.[n - 1] = '}');
            Alcotest.(check bool) "typed" true
              (String.sub l 0 9 = "{\"type\":\""))
          lines;
        let spans =
          List.filter (fun l -> contains l "\"type\":\"span\"") lines
        in
        Alcotest.(check int) "span lines streamed" 2 (List.length spans);
        Alcotest.(check bool) "inner quoted name escaped" true
          (List.exists (fun l -> contains l "dp \\\"axis\\\"") spans);
        Alcotest.(check bool) "inner path" true
          (List.exists (fun l -> contains l "\"path\":[\"gp\"]") spans);
        Alcotest.(check bool) "counter line" true
          (List.exists
             (fun l ->
               contains l "\"type\":\"counter\""
               && contains l "\"j.count\"" && contains l "\"value\":3")
             lines);
        Alcotest.(check bool) "gauge line" true
          (List.exists
             (fun l ->
               contains l "\"type\":\"gauge\"" && contains l "\"j.gauge\"")
             lines));
    Alcotest.test_case "placer result is identical under any sink" `Quick
      (fun () ->
        let c = Circuits.Testcases.get_exn "Comp1" in
        let params =
          { Eplace.Eplace_a.default_params with
            Eplace.Eplace_a.restarts = 1; dp_passes = 1 }
        in
        let run () =
          match Eplace.Eplace_a.place ~params c with
          | Some r -> r.Eplace.Eplace_a.layout
          | None -> Alcotest.fail "infeasible"
        in
        let a = run () in
        let file = Filename.temp_file "telemetry" ".jsonl" in
        let oc = open_out file in
        Telemetry.set_sink (Telemetry.jsonl oc);
        let b = run () in
        Telemetry.set_sink Telemetry.noop;
        close_out oc;
        Sys.remove file;
        Alcotest.(check bool) "xs identical" true
          (Array.for_all2 Float.equal a.Netlist.Layout.xs
             b.Netlist.Layout.xs);
        Alcotest.(check bool) "ys identical" true
          (Array.for_all2 Float.equal a.Netlist.Layout.ys
             b.Netlist.Layout.ys));
  ]

let stats_tests =
  [
    Alcotest.test_case "method outcomes carry per-run telemetry stats"
      `Quick (fun () ->
        let c = Circuits.Testcases.get_exn "Comp1" in
        let m =
          Experiments.Methods.eplace_a
            ~params:
              { Eplace.Eplace_a.default_params with
                Eplace.Eplace_a.restarts = 1; dp_passes = 1 }
            ()
        in
        match m.Experiments.Methods.run c with
        | None -> Alcotest.fail "infeasible"
        | Some o ->
            let s = o.Experiments.Methods.stats in
            Alcotest.(check bool) "iterations counted" true
              (s.Experiments.Methods.iterations > 0);
            Alcotest.(check bool) "f-evals counted" true
              (s.Experiments.Methods.f_evals
               >= s.Experiments.Methods.iterations);
            Alcotest.(check bool) "gp time positive" true
              (s.Experiments.Methods.gp_s > 0.0);
            Alcotest.(check bool) "dp time positive" true
              (s.Experiments.Methods.dp_s > 0.0);
            Alcotest.(check bool) "no gnn phase" true
              (Float.equal s.Experiments.Methods.gnn_s 0.0);
            (* the acceptance criterion: phases sum to within 5% of the
               reported wall time *)
            let covered =
              s.Experiments.Methods.gp_s +. s.Experiments.Methods.dp_s
              +. s.Experiments.Methods.select_s
            in
            Alcotest.(check bool) "phases cover runtime" true
              (covered <= o.Experiments.Methods.runtime_s +. 1e-6
              && covered >= 0.95 *. o.Experiments.Methods.runtime_s));
    Alcotest.test_case "kind round-trips through strings" `Quick (fun () ->
        List.iter
          (fun k ->
            Alcotest.(check bool) "round-trip" true
              (Experiments.Methods.of_string (Experiments.Methods.to_string k)
              = Some k))
          Experiments.Methods.all;
        Alcotest.(check bool) "unknown" true
          (Experiments.Methods.of_string "vlsi" = None));
  ]

let suites =
  [
    ("telemetry.spans", span_tests);
    ("telemetry.counters", counter_tests);
    ("telemetry.sinks", sink_tests);
    ("telemetry.stats", stats_tests);
  ]
