(* Tests for the grid maze router. *)

module Mz = Router.Maze
module St = Router.Steiner

let placed_fixture () =
  let c = Fixtures.diff_stage () in
  let l = Netlist.Layout.create c in
  let xs, ys = Fixtures.diff_stage_coords () in
  Array.iteri (fun i x -> Netlist.Layout.set l i ~x ~y:ys.(i)) xs;
  (c, l)

let tests =
  [
    Alcotest.test_case "routes every net of the fixture" `Quick (fun () ->
        let _, l = placed_fixture () in
        let r = Mz.route ~step:0.25 l in
        Array.iter
          (fun (n : Mz.routed_net) ->
            Alcotest.(check bool) "finite" true (Float.is_finite n.Mz.length_um))
          r.Mz.nets);
    Alcotest.test_case "maze length >= L1 lower bound per 2-pin net" `Quick
      (fun () ->
        let c, l = placed_fixture () in
        let r = Mz.route ~step:0.25 l in
        Array.iter
          (fun (e : Netlist.Net.t) ->
            if Netlist.Net.degree e = 2 then begin
              let p0 = Netlist.Layout.pin_position l e.Netlist.Net.terminals.(0) in
              let p1 = Netlist.Layout.pin_position l e.Netlist.Net.terminals.(1) in
              let lb = Geometry.Point.dist_l1 p0 p1 in
              let got = r.Mz.nets.(e.Netlist.Net.id).Mz.length_um in
              (* grid discretisation tolerance: one step per bend/pin *)
              if got < lb -. (3.0 *. r.Mz.grid_step) then
                Alcotest.failf "net %s routed below L1 bound: %.2f < %.2f"
                  e.Netlist.Net.name got lb
            end)
          c.Netlist.Circuit.nets);
    Alcotest.test_case "total maze length within 3x of steiner estimate"
      `Quick (fun () ->
        let c, l = placed_fixture () in
        let r = Mz.route ~step:0.25 l in
        let est =
          Array.fold_left
            (fun acc e -> acc +. St.net_length l e)
            0.0 c.Netlist.Circuit.nets
        in
        Alcotest.(check bool)
          (Printf.sprintf "maze %.1f vs steiner %.1f" r.Mz.total_length_um est)
          true
          (r.Mz.total_length_um >= 0.8 *. est
          && r.Mz.total_length_um <= 3.0 *. est));
    Alcotest.test_case "single-pin nets route to zero length" `Quick
      (fun () ->
        let c, l = placed_fixture () in
        let r = Mz.route l in
        Array.iter
          (fun (e : Netlist.Net.t) ->
            if Netlist.Net.degree e = 1 then
              Alcotest.(check (float 1e-9)) "zero" 0.0
                r.Mz.nets.(e.Netlist.Net.id).Mz.length_um)
          c.Netlist.Circuit.nets);
    Alcotest.test_case "finer grid refines the length estimate" `Quick
      (fun () ->
        let _, l = placed_fixture () in
        let coarse = Mz.route ~step:0.5 l in
        let fine = Mz.route ~step:0.2 l in
        (* same topology class: lengths should agree within ~40% *)
        let ratio = fine.Mz.total_length_um /. coarse.Mz.total_length_um in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.2f" ratio)
          true
          (ratio > 0.6 && ratio < 1.6));
    Alcotest.test_case "congestion costs spread parallel nets" `Quick
      (fun () ->
        let _, l = placed_fixture () in
        let r = Mz.route ~step:0.25 l in
        (* with congestion pricing, heavy sharing should be rare *)
        Alcotest.(check bool)
          (Printf.sprintf "overflow cells %d" r.Mz.overflow_cells)
          true (r.Mz.overflow_cells < 40));
    Alcotest.test_case "routes a real placed testcase" `Slow (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let params =
          { Annealing.Sa_placer.default_params with
            Annealing.Sa_placer.moves = 8000 }
        in
        let l, _ = Annealing.Sa_placer.place ~params c in
        let r = Mz.route ~step:0.25 l in
        Array.iter
          (fun (n : Mz.routed_net) ->
            Alcotest.(check bool) "routed" true
              (Float.is_finite n.Mz.length_um))
          r.Mz.nets;
        Alcotest.(check bool) "nonzero total" true (r.Mz.total_length_um > 0.0));
  ]

let suites = [ ("router.maze", tests) ]
