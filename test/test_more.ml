(* Additional edge-case coverage across the numeric substrates. *)

module R = Numerics.Rng
module V = Numerics.Vec
module M = Numerics.Matrix
module F = Numerics.Fft
module Sx = Numerics.Simplex

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let vec_tests =
  [
    Alcotest.test_case "axpy accumulates" `Quick (fun () ->
        let y = [| 1.0; 2.0 |] in
        V.axpy ~alpha:2.0 [| 3.0; -1.0 |] y;
        checkf "y0" 7.0 y.(0);
        checkf "y1" 0.0 y.(1));
    Alcotest.test_case "dot rejects size mismatch" `Quick (fun () ->
        let raised =
          try
            ignore (V.dot [| 1.0 |] [| 1.0; 2.0 |]);
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "raises" true raised);
    Alcotest.test_case "norm of unit vectors" `Quick (fun () ->
        checkf "norm" 1.0 (V.norm [| 1.0; 0.0; 0.0 |]);
        checkf "norm2" 2.0 (V.norm2 [| 1.0; -1.0 |]));
    Alcotest.test_case "mean of empty is zero" `Quick (fun () ->
        checkf "mean" 0.0 (V.mean [||]));
  ]

let matrix_tests =
  [
    Alcotest.test_case "matmul matches hand computation" `Quick (fun () ->
        let a = M.init 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
        let b = M.init 3 2 (fun i j -> float_of_int ((i * 2) + j)) in
        let c = M.matmul a b in
        (* row 0 of a = [0;1;2]; col 0 of b = [0;2;4] -> 10 *)
        checkf "c00" 10.0 (M.get c 0 0);
        checkf "c01" 13.0 (M.get c 0 1);
        checkf "c10" 28.0 (M.get c 1 0));
    Alcotest.test_case "transpose is an involution" `Quick (fun () ->
        let r = R.create 2 in
        let a = M.init 4 3 (fun _ _ -> R.gaussian r) in
        let b = M.transpose (M.transpose a) in
        for i = 0 to 3 do
          for j = 0 to 2 do
            checkf "elt" (M.get a i j) (M.get b i j)
          done
        done);
    Alcotest.test_case "matmul associativity (small)" `Quick (fun () ->
        let r = R.create 5 in
        let a = M.init 3 4 (fun _ _ -> R.gaussian r) in
        let b = M.init 4 2 (fun _ _ -> R.gaussian r) in
        let c = M.init 2 5 (fun _ _ -> R.gaussian r) in
        let left = M.matmul (M.matmul a b) c in
        let right = M.matmul a (M.matmul b c) in
        for i = 0 to 2 do
          for j = 0 to 4 do
            checkf ~eps:1e-9 "assoc" (M.get left i j) (M.get right i j)
          done
        done);
  ]

let fft_tests =
  [
    Alcotest.test_case "fft is linear" `Quick (fun () ->
        let r = R.create 4 in
        let n = 16 in
        let x = Array.init n (fun _ -> R.gaussian r) in
        let y = Array.init n (fun _ -> R.gaussian r) in
        let fwd v =
          let re = Array.copy v and im = Array.make n 0.0 in
          F.forward re im;
          (re, im)
        in
        let xr, xi = fwd x and yr, yi = fwd y in
        let s = Array.init n (fun i -> (2.0 *. x.(i)) +. y.(i)) in
        let sr, si = fwd s in
        for i = 0 to n - 1 do
          checkf ~eps:1e-8 "re" ((2.0 *. xr.(i)) +. yr.(i)) sr.(i);
          checkf ~eps:1e-8 "im" ((2.0 *. xi.(i)) +. yi.(i)) si.(i)
        done);
    Alcotest.test_case "parseval holds" `Quick (fun () ->
        let r = R.create 6 in
        let n = 32 in
        let x = Array.init n (fun _ -> R.gaussian r) in
        let re = Array.copy x and im = Array.make n 0.0 in
        F.forward re im;
        let time_e = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x in
        let freq_e = ref 0.0 in
        for i = 0 to n - 1 do
          freq_e := !freq_e +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
        done;
        checkf ~eps:1e-6 "parseval" time_e (!freq_e /. float_of_int n));
    Alcotest.test_case "length-1 fft is the identity" `Quick (fun () ->
        let re = [| 3.5 |] and im = [| -1.0 |] in
        F.forward re im;
        checkf "re" 3.5 re.(0);
        checkf "im" (-1.0) im.(0));
  ]

let simplex_tests =
  [
    Alcotest.test_case "equality-only system solves" `Quick (fun () ->
        (* x + y = 4; x - y = 2 -> (3, 1) *)
        let p =
          {
            Sx.n_vars = 2;
            objective = [| 1.0; 1.0 |];
            constraints =
              [
                { Sx.coeffs = [ (0, 1.0); (1, 1.0) ]; op = Sx.Eq; rhs = 4.0 };
                { Sx.coeffs = [ (0, 1.0); (1, -1.0) ]; op = Sx.Eq; rhs = 2.0 };
              ];
          }
        in
        match Sx.solve p with
        | Sx.Optimal s ->
            checkf ~eps:1e-7 "x" 3.0 s.Sx.x.(0);
            checkf ~eps:1e-7 "y" 1.0 s.Sx.x.(1)
        | r -> Alcotest.failf "unexpected %a" Sx.pp_result r);
    Alcotest.test_case "redundant equalities tolerated" `Quick (fun () ->
        let p =
          {
            Sx.n_vars = 2;
            objective = [| 1.0; 2.0 |];
            constraints =
              [
                { Sx.coeffs = [ (0, 1.0); (1, 1.0) ]; op = Sx.Eq; rhs = 3.0 };
                { Sx.coeffs = [ (0, 2.0); (1, 2.0) ]; op = Sx.Eq; rhs = 6.0 };
              ];
          }
        in
        match Sx.solve p with
        | Sx.Optimal s -> checkf ~eps:1e-7 "obj" 3.0 s.Sx.objective_value
        | r -> Alcotest.failf "unexpected %a" Sx.pp_result r);
    Alcotest.test_case "zero-variable objective works" `Quick (fun () ->
        let p =
          {
            Sx.n_vars = 1;
            objective = [| 0.0 |];
            constraints =
              [ { Sx.coeffs = [ (0, 1.0) ]; op = Sx.Le; rhs = 5.0 } ];
          }
        in
        match Sx.solve p with
        | Sx.Optimal s -> checkf "obj" 0.0 s.Sx.objective_value
        | r -> Alcotest.failf "unexpected %a" Sx.pp_result r);
    Alcotest.test_case "bad variable index rejected" `Quick (fun () ->
        let p =
          {
            Sx.n_vars = 1;
            objective = [| 1.0 |];
            constraints =
              [ { Sx.coeffs = [ (3, 1.0) ]; op = Sx.Le; rhs = 1.0 } ];
          }
        in
        let raised =
          try
            ignore (Sx.solve p);
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "raises" true raised);
  ]

let rng_tests =
  [
    Alcotest.test_case "split streams differ from parent" `Quick (fun () ->
        let a = R.create 42 in
        let b = R.split a in
        let xs = List.init 20 (fun _ -> R.float a) in
        let ys = List.init 20 (fun _ -> R.float b) in
        Alcotest.(check bool) "different" true
          (not (List.equal Float.equal xs ys)));
    Alcotest.test_case "uniform respects bounds" `Quick (fun () ->
        let r = R.create 9 in
        for _ = 1 to 500 do
          let v = R.uniform r ~lo:(-2.5) ~hi:7.25 in
          Alcotest.(check bool) "in range" true (v >= -2.5 && v < 7.25)
        done);
    Alcotest.test_case "uniform rejects inverted bounds" `Quick (fun () ->
        let r = R.create 1 in
        let raised =
          try
            ignore (R.uniform r ~lo:2.0 ~hi:1.0);
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "raises" true raised);
  ]

let checks_extra_tests =
  [
    Alcotest.test_case "horizontal symmetry group checks" `Quick (fun () ->
        (* two devices mirrored about a horizontal axis *)
        let d i name =
          Netlist.Device.make ~id:i ~name ~kind:Netlist.Device.Nmos ~w:1.0
            ~h:1.0
            ~pins:[| { Netlist.Device.pin_name = "p"; ox = 0.5; oy = 0.5 } |]
        in
        let c =
          Netlist.Circuit.make
            ~constraints:
              (Netlist.Constraint_set.make
                 ~sym_groups:
                   [ Netlist.Constraint_set.sym_group
                       ~axis:Netlist.Constraint_set.Horizontal [ (0, 1) ] ]
                 ())
            ~name:"h" ~devices:[| d 0 "a"; d 1 "b" |]
            ~nets:
              [| Netlist.Net.make ~id:0 ~name:"n"
                   [| { Netlist.Net.dev = 0; pin = 0 };
                      { Netlist.Net.dev = 1; pin = 0 } |] |]
            ()
        in
        let l = Netlist.Layout.create c in
        Netlist.Layout.set l 0 ~x:1.0 ~y:0.0;
        Netlist.Layout.set l 1 ~x:1.0 ~y:3.0;
        Alcotest.(check int) "symmetric" 0
          (List.length (Netlist.Checks.symmetry_violations l));
        Netlist.Layout.set l 1 ~x:1.4 ~y:3.0;
        Alcotest.(check bool) "x offset breaks it" true
          (match Netlist.Checks.symmetry_violations l with
          | [] -> false
          | _ -> true));
    Alcotest.test_case "bottom_to_top ordering checks" `Quick (fun () ->
        let d i name =
          Netlist.Device.make ~id:i ~name ~kind:Netlist.Device.Nmos ~w:1.0
            ~h:1.0
            ~pins:[| { Netlist.Device.pin_name = "p"; ox = 0.5; oy = 0.5 } |]
        in
        let c =
          Netlist.Circuit.make
            ~constraints:
              (Netlist.Constraint_set.make
                 ~orders:
                   [ { Netlist.Constraint_set.order_dir =
                         Netlist.Constraint_set.Bottom_to_top;
                       chain = [ 0; 1 ] } ]
                 ())
            ~name:"v" ~devices:[| d 0 "a"; d 1 "b" |]
            ~nets:
              [| Netlist.Net.make ~id:0 ~name:"n"
                   [| { Netlist.Net.dev = 0; pin = 0 } |] |]
            ()
        in
        let l = Netlist.Layout.create c in
        Netlist.Layout.set l 0 ~x:0.0 ~y:0.0;
        Netlist.Layout.set l 1 ~x:0.0 ~y:2.0;
        Alcotest.(check int) "ok" 0
          (List.length (Netlist.Checks.ordering_violations l));
        Netlist.Layout.set l 1 ~x:0.0 ~y:0.5;
        Alcotest.(check bool) "violated" true
          (match Netlist.Checks.ordering_violations l with
          | [] -> false
          | _ -> true));
  ]

let suites =
  [
    ("more.vec", vec_tests);
    ("more.matrix", matrix_tests);
    ("more.fft", fft_tests);
    ("more.simplex", simplex_tests);
    ("more.rng", rng_tests);
    ("more.checks", checks_extra_tests);
  ]
