(* The matheuristic stack, bottom up: the window ILP against a
   brute-force enumeration oracle, the Eval.set_order move, the
   accept-only-if-improved window gate, determinism of full runs, and
   the spec/params wiring of the Methods API. *)

module W = Matheuristic.Window_ilp
module Mh = Matheuristic.Mh_placer
module Rng = Numerics.Rng
module M = Experiments.Methods

let feq = Alcotest.float 1e-5

(* ---------- oracle: ILP vs enumeration of all orderings ---------- *)

let rec perms = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
        l

(* Random window: k items, a few 2-3 pin nets; [with_fixed] mixes in
   frozen pins of the surrounding placement. The frame is oversized so
   every ordering is feasible and the enumeration is total. *)
let random_inst rng k ~with_fixed =
  let items =
    Array.init k (fun _ ->
        {
          W.iw = 1.0 +. float_of_int (Rng.int rng 9);
          ih = 1.0 +. float_of_int (Rng.int rng 9);
        })
  in
  let sumw = Array.fold_left (fun a i -> a +. i.W.iw) 0.0 items in
  let sumh = Array.fold_left (fun a i -> a +. i.W.ih) 0.0 items in
  let frame = sumw +. sumh in
  let nets =
    List.init
      (1 + Rng.int rng 3)
      (fun _ ->
        let pins =
          List.init
            (2 + Rng.int rng 2)
            (fun _ ->
              if with_fixed && Rng.int rng 4 = 0 then
                {
                  W.p_item = None;
                  p_x = float_of_int (Rng.int rng 25);
                  p_y = float_of_int (Rng.int rng 25);
                }
              else
                let it = Rng.int rng k in
                {
                  W.p_item = Some it;
                  p_x = 0.5 *. items.(it).W.iw;
                  p_y = 0.5 *. items.(it).W.ih;
                })
        in
        { W.n_weight = 1.0 +. float_of_int (Rng.int rng 2); n_pins = pins })
  in
  { W.items; nets; frame_w = frame; frame_h = frame; area_lambda = 0.1 }

let brute_force_min inst =
  let k = Array.length inst.W.items in
  let orders =
    List.map Array.of_list (perms (List.init k Fun.id))
  in
  List.fold_left
    (fun acc pos ->
      List.fold_left
        (fun acc neg ->
          match W.lp_for_orders inst ~pos ~neg with
          | Some v -> Float.min acc v
          | None -> acc)
        acc orders)
    infinity orders

let check_instance inst =
  match W.solve ~node_budget:200_000 inst with
  | None -> Alcotest.fail "ILP returned no solution on a feasible window"
  | Some sol ->
      Alcotest.(check bool) "optimality proved in budget" true sol.W.sol_proved;
      let best = brute_force_min inst in
      Alcotest.check feq "ILP optimum equals enumerated optimum" best
        sol.W.sol_objective;
      (* and the returned orders actually achieve that objective *)
      (match W.lp_for_orders inst ~pos:sol.W.sol_pos ~neg:sol.W.sol_neg with
      | Some v ->
          Alcotest.check feq "returned orders price at the optimum" best v
      | None -> Alcotest.fail "returned orders are LP-infeasible")

let oracle_tests =
  [
    Alcotest.test_case "ILP matches brute force, k=2..4" `Quick (fun () ->
        let rng = Rng.create 42 in
        for k = 2 to 4 do
          for trial = 0 to 3 do
            check_instance (random_inst rng k ~with_fixed:(trial mod 2 = 1))
          done
        done);
    Alcotest.test_case "ILP matches brute force, k=5" `Slow (fun () ->
        let rng = Rng.create 7 in
        check_instance (random_inst rng 5 ~with_fixed:true));
    Alcotest.test_case "identical islands: ties broken deterministically"
      `Quick (fun () ->
        (* four identical squares sharing one centre-pin net: every
           ordering prices identically, so the branch-and-bound and its
           LP relaxations pivot through nothing but ties. The optimum
           must still match the oracle, and the order returned for the
           fully tied instance must be reproducible run to run. *)
        let items = Array.init 4 (fun _ -> { W.iw = 2.0; ih = 2.0 }) in
        let nets =
          [
            { W.n_weight = 1.0;
              n_pins =
                List.init 4 (fun it ->
                    { W.p_item = Some it; p_x = 1.0; p_y = 1.0 }) };
          ]
        in
        let inst =
          { W.items; nets; frame_w = 16.0; frame_h = 16.0; area_lambda = 0.1 }
        in
        check_instance inst;
        match (W.solve inst, W.solve inst) with
        | Some a, Some b ->
            Alcotest.(check (array int)) "tied pos order stable" a.W.sol_pos
              b.W.sol_pos;
            Alcotest.(check (array int)) "tied neg order stable" a.W.sol_neg
              b.W.sol_neg
        | _ -> Alcotest.fail "tied instance did not solve");
    Alcotest.test_case "solve is deterministic" `Quick (fun () ->
        let inst = random_inst (Rng.create 11) 4 ~with_fixed:true in
        match (W.solve inst, W.solve inst) with
        | Some a, Some b ->
            Alcotest.(check (array int)) "pos" a.W.sol_pos b.W.sol_pos;
            Alcotest.(check (array int)) "neg" a.W.sol_neg b.W.sol_neg;
            Alcotest.(check (float 0.0)) "objective" a.W.sol_objective
              b.W.sol_objective
        | _ -> Alcotest.fail "solve failed");
  ]

(* ---------- Eval.set_order: the window move's engine hook ---------- *)

let set_order_tests =
  [
    Alcotest.test_case "set_order + revert restores the cost bitwise" `Quick
      (fun () ->
        let module E = Annealing.Eval in
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let st = E.make_state (Rng.create 3) c in
        let obj =
          {
            E.area_weight = 1.0;
            wl_weight = 1.0;
            order_penalty = 40.0;
            perf = None;
            perf_alpha = 0.0;
          }
        in
        let eng = E.make obj st in
        let c0 = E.cost eng in
        let n = Array.length st.E.islands in
        let rev a = Array.init n (fun i -> a.(n - 1 - i)) in
        E.set_order eng
          ~pos:(rev st.E.sp.Annealing.Seqpair.pos)
          ~neg:(rev st.E.sp.Annealing.Seqpair.neg);
        let c1 = E.cost eng in
        (* a reversed sequence pair mirrors the floorplan: still a
           valid configuration the engine can price *)
        Alcotest.(check bool) "reordered cost is finite" true
          (Float.is_finite c1);
        E.revert eng;
        Alcotest.(check (float 0.0)) "cost restored exactly" c0 (E.cost eng);
        Alcotest.(check (float 0.0)) "matches a full recompute" (E.full_cost eng)
          (E.cost eng));
  ]

(* ---------- the accept gate and full-run determinism ---------- *)

let mh_quick_params =
  {
    Mh.default_params with
    Mh.sa =
      { Annealing.Sa_placer.default_params with
        Annealing.Sa_placer.moves = 20_000;
        restarts = 1 };
    cycles = 2;
    (* small windows have the most faithful surrogate: on CC-OTA this
       setting accepts most of its window proposals *)
    window = 3;
  }

let placer_tests =
  [
    Alcotest.test_case "accepted windows never raise the cost" `Quick
      (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let windows = ref 0 and accepts = ref 0 in
        let on_window ~accepted ~before ~after =
          incr windows;
          if accepted then begin
            incr accepts;
            if after > before then
              Alcotest.failf
                "accepted window raised the cost: %.17g -> %.17g" before
                after
          end
        in
        let _layout, _cost = Mh.place ~params:mh_quick_params ~on_window c in
        Alcotest.(check bool) "some windows were solved" true (!windows > 0);
        (* the frame is the window's current bounding box, so the
           current ordering is always ILP-feasible and proposals hug
           the packed reality: this run accepts most of its windows *)
        Alcotest.(check bool) "some windows were accepted" true (!accepts > 0));
    Alcotest.test_case "placement is deterministic across runs" `Quick
      (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let l1, c1 = Mh.place ~params:mh_quick_params c in
        let l2, c2 = Mh.place ~params:mh_quick_params c in
        Alcotest.(check (float 0.0)) "same cost" c1 c2;
        Alcotest.(check string) "same layout"
          (Netlist.Io.placement_to_string l1)
          (Netlist.Io.placement_to_string l2));
    Alcotest.test_case "walk_neg runs are deterministic and legal" `Quick
      (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let params = { mh_quick_params with Mh.walk_neg = true } in
        let l1, c1 = Mh.place ~params c in
        let l2, c2 = Mh.place ~params c in
        Alcotest.(check (float 0.0)) "same cost" c1 c2;
        Alcotest.(check string) "same layout"
          (Netlist.Io.placement_to_string l1)
          (Netlist.Io.placement_to_string l2);
        (match Netlist.Checks.all l1 with
        | [] -> ()
        | viol ->
            Alcotest.failf "%d violations with walk_neg" (List.length viol));
        (* the extra sweep must double the windows solved per cycle on a
           circuit large enough to fit one window per order *)
        let count params =
          let n = ref 0 in
          let _ = Mh.place ~params ~on_window:(fun ~accepted:_ ~before:_ ~after:_ -> incr n) c in
          !n
        in
        Alcotest.(check bool) "walk_neg solves more windows" true
          (count params > count mh_quick_params));
    Alcotest.test_case "method runs via the spec and is legal" `Slow
      (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let spec =
          { (M.default_spec M.Matheuristic) with
            M.moves = 20_000;
            params =
              M.Mh_params
                { M.default_mh_params with
                  M.mh_window = 3; mh_node_budget = 200; mh_cycles = 2 } }
        in
        match (M.of_spec spec).M.run c with
        | None -> Alcotest.fail "matheuristic returned no layout"
        | Some o ->
            (match Netlist.Checks.all o.M.layout with
            | [] -> ()
            | viol ->
                Alcotest.failf "%d violations after matheuristic"
                  (List.length viol));
            Alcotest.(check bool) "window solves were counted" true
              (o.M.stats.M.ilp_nodes > 0));
  ]

(* ---------- spec / params wiring ---------- *)

let hash_of_string txt =
  match M.spec_of_string txt with
  | Ok s -> M.spec_hash s
  | Error e -> Alcotest.failf "spec %S rejected: %s" txt e

let spec_tests =
  [
    Alcotest.test_case "params round-trip through json" `Quick (fun () ->
        let s =
          { (M.default_spec M.Matheuristic) with
            M.params =
              M.Mh_params
                { M.default_mh_params with
                  M.mh_window = 6; mh_node_budget = 123; mh_cycles = 9 } }
        in
        match M.spec_of_json (M.spec_to_json s) with
        | Ok s' ->
            Alcotest.(check bool) "equal records" true (s = s');
            Alcotest.(check string) "equal hashes" (M.spec_hash s)
              (M.spec_hash s')
        | Error e -> Alcotest.failf "round-trip failed: %s" e);
    Alcotest.test_case "walk_neg serializes only when set" `Quick (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh
            && (String.equal (String.sub hay i nn) needle || go (i + 1))
          in
          go 0
        in
        (* default spec: no "walk_neg" key, so pre-existing canonical
           strings and result-cache hashes are untouched *)
        let d = M.default_spec M.Matheuristic in
        Alcotest.(check bool) "absent by default" false
          (contains (M.spec_canonical d) "walk_neg");
        let s =
          { d with
            M.params =
              M.Mh_params { M.default_mh_params with M.mh_walk_neg = true } }
        in
        Alcotest.(check bool) "present when set" true
          (contains (M.spec_canonical s) "\"walk_neg\":true");
        (match M.spec_of_json (M.spec_to_json s) with
        | Ok s' -> Alcotest.(check bool) "round-trips" true (s = s')
        | Error e -> Alcotest.failf "walk_neg round-trip failed: %s" e);
        (* an explicit false is legal input and canonicalizes to the
           default spelling (and hash) *)
        Alcotest.(check string) "explicit false is the default job"
          (M.spec_hash d)
          (hash_of_string
             {|{"kind":"matheuristic","params":{"walk_neg":false}}|});
        Alcotest.(check bool) "enabling the knob changes the hash" true
          (not (String.equal (M.spec_hash d) (M.spec_hash s)));
        match
          M.spec_of_string {|{"kind":"matheuristic","params":{"walk_neg":3}}|}
        with
        | Ok _ -> Alcotest.fail "non-boolean walk_neg should be rejected"
        | Error _ -> ());
    Alcotest.test_case "one canonical hash per equivalent job" `Quick
      (fun () ->
        let default_hash = M.spec_hash (M.default_spec M.Matheuristic) in
        (* bare kind, explicit default subfield, explicit version tag,
           and reordered fields all land on the same canonical hash *)
        Alcotest.(check string) "bare kind" default_hash
          (hash_of_string {|{"kind":"matheuristic"}|});
        Alcotest.(check string) "partial params" default_hash
          (hash_of_string {|{"kind":"matheuristic","params":{"window":4}}|});
        Alcotest.(check string) "explicit v" default_hash
          (hash_of_string {|{"params":{"v":1},"kind":"matheuristic"}|});
        Alcotest.(check string) "wrapper-built spec" default_hash
          (M.spec_hash
             { (M.default_spec M.Matheuristic) with
               M.params = M.Mh_params M.default_mh_params }));
    Alcotest.test_case "strictness and versioning errors" `Quick (fun () ->
        let expect_error txt =
          match M.spec_of_string txt with
          | Ok _ -> Alcotest.failf "spec %S should have been rejected" txt
          | Error _ -> ()
        in
        expect_error {|{"kind":"matheuristic","params":{"windw":4}}|};
        expect_error {|{"kind":"matheuristic","params":{"v":2}}|};
        expect_error {|{"kind":"sa","params":{"window":4}}|};
        expect_error {|{"kind":"matheuristic","params":3}|});
    Alcotest.test_case "non-matheuristic hashes carry no params field" `Quick
      (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh
            && (String.equal (String.sub hay i nn) needle || go (i + 1))
          in
          go 0
        in
        List.iter
          (fun k ->
            let canon = M.spec_canonical (M.default_spec k) in
            let has_params =
              match k with M.Matheuristic -> true | _ -> false
            in
            Alcotest.(check bool)
              (M.to_string k ^ " params presence")
              has_params
              (contains canon "\"params\""))
          M.all);
  ]

let suites =
  [
    ("matheuristic.oracle", oracle_tests);
    ("matheuristic.set_order", set_order_tests);
    ("matheuristic.placer", placer_tests);
    ("matheuristic.spec", spec_tests);
  ]
