(* Tests for the experiment harness: table formatting, method wrappers
   and the GNN setup pipeline on reduced budgets. *)

module TF = Experiments.Table_fmt
module GS = Experiments.Gnn_setup
module Me = Experiments.Methods

let fmt_tests =
  [
    Alcotest.test_case "geo_mean_ratio of equal columns is 1" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "one" 1.0
          (TF.geo_mean_ratio [ (2.0, 2.0); (5.0, 5.0) ]));
    Alcotest.test_case "geo_mean_ratio of doubles is 2" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "two" 2.0
          (TF.geo_mean_ratio [ (2.0, 1.0); (8.0, 4.0) ]));
    Alcotest.test_case "geo_mean_ratio empty is 1" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "one" 1.0 (TF.geo_mean_ratio []));
    Alcotest.test_case "render handles ragged rows" `Quick (fun () ->
        let t =
          { TF.header = [ "a"; "b" ]; rows = [ [ "1" ]; [ "22"; "333"; "4" ] ] }
        in
        let s = Fmt.str "%a" TF.render t in
        Alcotest.(check bool) "renders" true (String.length s > 0));
  ]

let setup_tests =
  [
    Alcotest.test_case "layout generation produces legal-ish samples" `Quick
      (fun () ->
        let c = Circuits.Testcases.get_exn "Adder" in
        let sizes =
          { GS.n_random = 20; n_spread = 5; n_sa = 2; n_analytic = 0 }
        in
        let layouts = GS.generate_layouts ~sizes ~seed:3 c in
        Alcotest.(check int) "count" 27 (List.length layouts);
        (* random packings are overlap-free by construction *)
        List.iteri
          (fun i l ->
            if i < 20 && Netlist.Layout.total_overlap l > 1e-6 then
              Alcotest.failf "random packing %d overlaps" i)
          layouts);
    Alcotest.test_case "training produces a usable model" `Slow (fun () ->
        let c = Circuits.Testcases.get_exn "Adder" in
        let sizes =
          { GS.n_random = 60; n_spread = 20; n_sa = 8; n_analytic = 2 }
        in
        let t = GS.train_for ~sizes ~epochs:40 c in
        Alcotest.(check bool) "threshold sane" true
          (t.GS.threshold > 0.3 && t.GS.threshold <= 1.0);
        (* phi is a probability *)
        let l = List.hd (GS.generate_layouts ~sizes ~seed:9 c) in
        let p = GS.phi_of_layout t l in
        Alcotest.(check bool) "phi in (0,1)" true (p > 0.0 && p < 1.0));
    (* hammer the trained-model cache from 4 domains: every concurrent
       miss on one key must resolve to the same physically-equal value
       (the in-flight dedup trains once; waiters share the result) *)
    Alcotest.test_case "model cache is shared under parallel misses" `Slow
      (fun () ->
        let c = Circuits.Testcases.get_exn "Adder" in
        let sizes =
          { GS.n_random = 20; n_spread = 6; n_sa = 2; n_analytic = 0 }
        in
        let results =
          Pool.with_pool ~jobs:4 (fun pool ->
              Pool.map pool
                (* placer-lint: allow P1 hammering the memo cache from every task is the point of this test; Gnn_setup serialises all cache access behind its mutex *)
                (fun _ -> GS.get ~sizes ~epochs:8 c)
                (Array.init 8 Fun.id))
        in
        let first = results.(0) in
        Array.iteri
          (fun i t ->
            if not (t == first) then
              Alcotest.failf "caller %d got a distinct trained value" i)
          results);
  ]

let method_tests =
  [
    Alcotest.test_case "method wrappers run and produce legal layouts" `Slow
      (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let fast_eplace =
          { Eplace.Eplace_a.default_params with
            Eplace.Eplace_a.restarts = 1; dp_passes = 1 }
        in
        let fast_prev =
          { Prevwork.Prev_analytical.default_params with
            Prevwork.Prev_analytical.restarts = 1; passes = 1 }
        in
        List.iter
          (fun (m : Me.t) ->
            match m.Me.run c with
            | Some o ->
                if not (Netlist.Checks.is_legal o.Me.layout) then
                  Alcotest.failf "%s produced an illegal layout"
                    m.Me.method_name
            | None -> Alcotest.failf "%s failed" m.Me.method_name)
          [ Me.sa ~moves:5000 (); Me.prev ~params:fast_prev ();
            Me.eplace_a ~params:fast_eplace () ]);
    Alcotest.test_case "quick fig2 ablation shows area-term benefit" `Slow
      (fun () ->
        (* the area term should not make things dramatically worse; the
           full bench asserts the paper's direction, here we just check
           the machinery runs end to end *)
        let t = Experiments.Run.fig2 Experiments.Run.quick_cfg in
        Alcotest.(check bool) "has rows" true (List.length t.TF.rows >= 4));
  ]

let suites =
  [
    ("experiments.table_fmt", fmt_tests);
    ("experiments.gnn_setup", setup_tests);
    ("experiments.methods", method_tests);
  ]

(* appended: regression pins for the headline experiment shapes (quick
   budgets; the full bench asserts the paper-scale versions) *)
let shape_tests =
  [
    Alcotest.test_case "lse smoothing is worse than wa inside eplace-a"
      `Slow (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let run smoothing =
          let params =
            { Eplace.Eplace_a.default_params with
              Eplace.Eplace_a.restarts = 2;
              gp = { Eplace.Gp_params.default with Eplace.Gp_params.smoothing } }
          in
          match Eplace.Eplace_a.place ~params c with
          | Some r ->
              Netlist.Layout.area r.Eplace.Eplace_a.layout
              *. Netlist.Layout.hpwl r.Eplace.Eplace_a.layout
          | None -> infinity
        in
        Alcotest.(check bool) "wa <= lse * 1.02" true
          (run Eplace.Gp_params.Wa <= 1.02 *. run Eplace.Gp_params.Lse));
    Alcotest.test_case "analytical beats converged SA on hpwl (CC-OTA)"
      `Slow (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let sa = Me.sa ~moves:150_000 () in
        let ep = Me.eplace_a () in
        match (sa.Me.run c, ep.Me.run c) with
        | Some s, Some e ->
            Alcotest.(check bool) "hpwl" true
              (Netlist.Layout.hpwl e.Me.layout
              <= Netlist.Layout.hpwl s.Me.layout)
        | _ -> Alcotest.fail "method failed");
  ]

let suites = suites @ [ ("experiments.shapes", shape_tests) ]
