(* Tests for the incremental SA cost engine: the bit-equality contract
   between the O(n log n) packer and the quadratic reference, between
   the incremental cost and the from-scratch recomputation, and golden
   pins (captured on the pre-engine tree) guarding that the rewrite
   changed no observable number. *)

module SP = Annealing.Seqpair
module E = Annealing.Eval
module R = Numerics.Rng

let exact = Alcotest.float 0.0

let objective : E.objective =
  {
    E.area_weight = 1.0;
    wl_weight = 1.0;
    order_penalty = 40.0;
    perf = None;
    perf_alpha = 0.0;
  }

let pack_tests =
  [
    Alcotest.test_case "pack_into matches pack bit for bit" `Quick (fun () ->
        let rng = R.create 2024 in
        for _ = 1 to 300 do
          let n = 1 + R.int rng 24 in
          let sp = SP.random rng n in
          let widths = Array.init n (fun _ -> 0.25 +. R.float rng) in
          let heights = Array.init n (fun _ -> 0.25 +. R.float rng) in
          let xs_ref, ys_ref = SP.pack sp ~widths ~heights in
          let pk = SP.packer n in
          let xs = Array.make n nan and ys = Array.make n nan in
          SP.pack_into pk sp ~widths ~heights ~xs ~ys;
          for b = 0 to n - 1 do
            if Float.compare xs.(b) xs_ref.(b) <> 0 then
              Alcotest.failf "x(%d): %.17g <> %.17g (n=%d)" b xs.(b)
                xs_ref.(b) n;
            if Float.compare ys.(b) ys_ref.(b) <> 0 then
              Alcotest.failf "y(%d): %.17g <> %.17g (n=%d)" b ys.(b)
                ys_ref.(b) n
          done
        done);
    Alcotest.test_case "packer scratch is reusable" `Quick (fun () ->
        (* same packer across many shapes of the same size: no state
           leaks between calls *)
        let rng = R.create 7 in
        let n = 9 in
        let pk = SP.packer n in
        let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
        for _ = 1 to 100 do
          let sp = SP.random rng n in
          let widths = Array.init n (fun _ -> 0.5 +. R.float rng) in
          let heights = Array.init n (fun _ -> 0.5 +. R.float rng) in
          SP.pack_into pk sp ~widths ~heights ~xs ~ys;
          let xs_ref, ys_ref = SP.pack sp ~widths ~heights in
          Alcotest.(check (array (float 0.0))) "xs" xs_ref xs;
          Alcotest.(check (array (float 0.0))) "ys" ys_ref ys
        done);
  ]

(* Drive an engine through a random propose/accept/revert walk,
   cross-checking the incremental cost against the from-scratch path at
   every step. This is the property the [check_every] debug mode spot
   checks in production runs. *)
let walk ?(steps = 1000) name =
  let c = Circuits.Testcases.get_exn name in
  let rng = R.create 42 in
  let st = E.make_state rng c in
  let eng = E.make objective st in
  for step = 1 to steps do
    E.propose eng rng;
    let inc = E.cost eng in
    let full = E.full_cost eng in
    if Float.compare inc full <> 0 then
      Alcotest.failf "%s step %d: incremental %.17g <> full %.17g" name step
        inc full;
    if R.float rng < 0.5 then E.commit eng else E.revert eng
  done

let engine_tests =
  [
    Alcotest.test_case "incremental cost = full cost on 1k random walks"
      `Quick (fun () -> List.iter walk Circuits.Testcases.all_names);
    Alcotest.test_case "snapshot matches a fresh full evaluation" `Quick
      (fun () ->
        let c = Circuits.Testcases.get_exn "Comp1" in
        let rng = R.create 3 in
        let st = E.make_state rng c in
        let eng = E.make objective st in
        for _ = 1 to 200 do
          E.propose eng rng;
          ignore (E.cost eng : float);
          if R.float rng < 0.6 then E.commit eng else E.revert eng
        done;
        ignore (E.cost eng : float);
        let snap = E.snapshot eng in
        (* the arena the snapshot copies must agree with an independent
           from-scratch pack of the same sequence pair *)
        let xs, ys =
          SP.pack st.E.sp ~widths:st.E.widths ~heights:st.E.heights
        in
        let l = Netlist.Layout.create c in
        Array.iteri
          (fun b (isl : Annealing.Island.t) ->
            List.iter
              (fun (p : Annealing.Island.placed_dev) ->
                Netlist.Layout.set l p.Annealing.Island.dev
                  ~x:(xs.(b) +. p.Annealing.Island.dx)
                  ~y:(ys.(b) +. p.Annealing.Island.dy);
                Netlist.Layout.set_orient l p.Annealing.Island.dev
                  p.Annealing.Island.orient)
              isl.Annealing.Island.devices)
          st.E.islands;
        for d = 0 to Netlist.Layout.n_devices l - 1 do
          let pr = Netlist.Layout.center l d in
          let ps = Netlist.Layout.center snap d in
          Alcotest.check exact "x" pr.Geometry.Point.x ps.Geometry.Point.x;
          Alcotest.check exact "y" pr.Geometry.Point.y ps.Geometry.Point.y
        done);
    Alcotest.test_case "check_every=1 accepts its own arithmetic" `Quick
      (fun () ->
        let c = Circuits.Testcases.get_exn "CC-OTA" in
        let rng = R.create 9 in
        let st = E.make_state rng c in
        let eng = E.make ~check_every:1 objective st in
        (* every cost call cross-checks; any divergence raises *)
        for _ = 1 to 300 do
          E.propose eng rng;
          ignore (E.cost eng : float);
          if R.float rng < 0.5 then E.commit eng else E.revert eng
        done);
  ]

(* Golden pins captured with %.17g on the pre-engine tree (quadratic
   pack, per-move realize, full HPWL). Zero tolerance: the engine must
   reproduce the historical trajectory bit for bit. *)

let spread_hpwl_goldens =
  [
    ("Adder", 776.16000000000008);
    ("CC-OTA", 659.0);
    ("Comp1", 1037.4750000000001);
    ("Comp2", 4443.2049999999999);
    ("CM-OTA1", 1167.9949999999999);
    ("CM-OTA2", 2317.6300000000001);
    ("SCF", 3437.8750000000005);
    ("VGA", 1733.5599999999997);
    ("VCO1", 1356.2419999999997);
    ("VCO2", 4628.8599999999988);
  ]

(* Deterministic non-trivial layout exercising weights, orientations
   and multi-pin nets; pins Layout.hpwl (including the weight-0 /
   degree<=1 skip) against captured values. *)
let spread_layout c =
  let l = Netlist.Layout.create c in
  for i = 0 to Netlist.Layout.n_devices l - 1 do
    let fi = float_of_int i in
    Netlist.Layout.set l i
      ~x:((fi *. 11.3) +. (fi *. fi *. 0.7))
      ~y:((float_of_int ((i * 13) mod 7) *. 2.9) +. (fi *. 1.1));
    if i mod 3 = 1 then
      Netlist.Layout.set_orient l i (Geometry.Orient.make ~fx:true ~fy:false)
  done;
  l

(* Exact SA trajectories at 3k moves, pinned per circuit. These depend
   on the island decomposition order (deterministic, device-ascending
   since the hash-order fix in Island.decompose) and on the incremental
   cost engine staying bit-identical to a full recompute; any change to
   either shows up here as a precise float mismatch. *)
let sa_goldens =
  [
    ("Adder", (25.84, 28.569999999999993, 1.2554492385189366));
    ("CC-OTA", (28.160000000000004, 25.050000000000001, 1.2270406984407591));
    ("Comp1", (26.520000000000003, 33.655000000000001, 1.266329317297564));
    ("Comp2", (59.359999999999992, 96.999999999999986, 1.2144533647094031));
    ("CM-OTA1", (37., 36.415000000000006, 1.2445508330268522));
    ("CM-OTA2", (76.859999999999985, 76.509999999999991, 1.3402049873297504));
    ("SCF", (1115.4400000000003, 322.06000000000012, 1.6582722270141614));
    ("VGA", (43.68, 53.069999999999993, 1.1399205857645791));
    ("VCO1", (311.85599999999999, 111.48000000000002, 2.0799433259041216));
    ("VCO2", (387.19999999999993, 230.12999999999994, 1.4327613233101706));
  ]

let golden_tests =
  [
    Alcotest.test_case "spread-layout HPWL matches captured values" `Quick
      (fun () ->
        List.iter
          (fun (name, expected) ->
            let c = Circuits.Testcases.get_exn name in
            let l = spread_layout c in
            Alcotest.check exact name expected (Netlist.Layout.hpwl l))
          spread_hpwl_goldens);
    Alcotest.test_case "sa layouts match pinned goldens" `Quick (fun () ->
        List.iter
          (fun (name, (area, hpwl, best_cost)) ->
            let c = Circuits.Testcases.get_exn name in
            let params =
              { Annealing.Sa_placer.default_params with
                Annealing.Sa_placer.moves = 3_000 }
            in
            let l, cost = Annealing.Sa_placer.place ~params c in
            Alcotest.check exact (name ^ " area") area (Netlist.Layout.area l);
            Alcotest.check exact (name ^ " hpwl") hpwl (Netlist.Layout.hpwl l);
            Alcotest.check exact (name ^ " cost") best_cost cost)
          sa_goldens);
    Alcotest.test_case "restarted sa matches pinned golden" `Quick
      (fun () ->
        let c = Circuits.Testcases.get_exn "Comp1" in
        let params =
          { Annealing.Sa_placer.default_params with
            Annealing.Sa_placer.moves = 3_000; seed = 11; restarts = 3 }
        in
        let l, cost = Annealing.Sa_placer.place ~params c in
        Alcotest.check exact "area" 22.800000000000001 (Netlist.Layout.area l);
        Alcotest.check exact "hpwl" 35.57 (Netlist.Layout.hpwl l);
        Alcotest.check exact "cost" 1.375147175540949 cost);
  ]

let suites =
  [
    ("eval.pack", pack_tests);
    ("eval.engine", engine_tests);
    ("eval.golden", golden_tests);
  ]
