(* SA vs matheuristic benchmark.

   For each circuit, two spec-built methods run back to back:

     sa     conventional SA at the paper-style budget (40k moves per
            island, capped at the 4M paper budget).
     math   the matheuristic at the method's default discount (an
            eighth of the SA budget): SA global phases alternating
            with exact ILP re-optimization of island windows.

   The math row carries a per-phase runtime split — gp (global SA
   moves), dp (window sweeps + final normalize) and, nested inside dp,
   ilp (time inside the simplex + branch & bound window solves) — plus
   the window counters, so "where did the ILP budget go" is answerable
   from the JSON alone: windows solved, windows accepted, B&B nodes.

   Usage: matheuristic.exe [out.json]  *)

module M = Experiments.Methods

let circuits = Circuits.Testcases.all_names @ [ "Scaled-120"; "Scaled-240" ]

type run = {
  r_s : float;
  r_area : float;
  r_hpwl : float;
  r_viol : int;
  r_stats : M.stats;
  (* spans/counters the generic stats record does not carry, read from
     the collector right after the run (instrumented runs reset it on
     entry, so these are this run's totals) *)
  r_ilp_s : float;
  r_windows : int;
  r_accepts : int;
}

let measure (m : M.t) c =
  match m.M.run c with
  | None -> failwith ("method returned no layout: " ^ m.M.method_name)
  | Some o ->
      {
        r_s = o.M.runtime_s;
        r_area = Netlist.Layout.area o.M.layout;
        r_hpwl = Netlist.Layout.hpwl o.M.layout;
        r_viol = List.length (Netlist.Checks.all o.M.layout);
        r_stats = o.M.stats;
        r_ilp_s = Telemetry.span_total "ilp";
        r_windows =
          Telemetry.Counter.value (Telemetry.Counter.make "mh.windows");
        r_accepts =
          Telemetry.Counter.value (Telemetry.Counter.make "mh.window_accepts");
      }

type row = {
  name : string;
  devices : int;
  islands : int;
  sa_moves : int;
  sa : run;
  math : run;
}

let bench name =
  let c = Circuits.Testcases.get_exn name in
  let devices = Array.length c.Netlist.Circuit.devices in
  let islands = List.length (Annealing.Island.decompose c) in
  let sa_moves = min M.sa_default_moves (40_000 * islands) in
  let sa_spec = { (M.default_spec M.Sa) with M.moves = sa_moves } in
  let math_spec =
    { (M.default_spec M.Matheuristic) with
      M.moves = max 5_000 (sa_moves / 8) }
  in
  let sa = measure (M.of_spec sa_spec) c in
  let math = measure (M.of_spec math_spec) c in
  { name; devices; islands; sa_moves; sa; math }

let json_run tag r =
  Printf.sprintf
    {|"%s_s": %.3f, "%s_area": %.1f, "%s_hpwl": %.1f, "%s_violations": %d|}
    tag r.r_s tag r.r_area tag r.r_hpwl tag r.r_viol

let json_row b =
  Printf.sprintf
    {|    {
      "circuit": "%s",
      "devices": %d,
      "islands": %d,
      "sa_moves": %d,
      %s,
      %s,
      "math_gp_s": %.3f,
      "math_dp_s": %.3f,
      "math_ilp_s": %.3f,
      "math_windows": %d,
      "math_window_accepts": %d,
      "math_ilp_nodes": %d,
      "math_speedup_vs_sa": %.2f
    }|}
    b.name b.devices b.islands b.sa_moves (json_run "sa" b.sa)
    (json_run "math" b.math) b.math.r_stats.M.gp_s b.math.r_stats.M.dp_s
    b.math.r_ilp_s b.math.r_windows b.math.r_accepts
    b.math.r_stats.M.ilp_nodes
    (b.sa.r_s /. Float.max 1e-9 b.math.r_s)

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "BENCH_matheuristic.json"
  in
  let rows =
    List.map
      (fun name ->
        let b = bench name in
        Fmt.pr
          "%-11s %3dd %2di  sa %6.2fs hpwl %6.1f | math %5.2fs x%4.1f hpwl \
           %6.1f (gp %.2fs ilp %.2fs, %d/%d windows, %d nodes)@."
          b.name b.devices b.islands b.sa.r_s b.sa.r_hpwl b.math.r_s
          (b.sa.r_s /. Float.max 1e-9 b.math.r_s)
          b.math.r_hpwl b.math.r_stats.M.gp_s b.math.r_ilp_s b.math.r_accepts
          b.math.r_windows b.math.r_stats.M.ilp_nodes;
        b)
      circuits
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"bench\": \"matheuristic\",\n  \"note\": \"SA at the paper budget \
     vs the matheuristic at its eighth-budget default; math phase columns \
     split gp (SA moves) from dp (window sweeps) and ilp (B&B window \
     solves, nested in dp)\",\n\
     \  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  Fmt.pr "wrote %s@." out
