(* Cold/warm benchmark for the motif template cache.

   For each circuit, three placements run back to back in one process:

     sa     conventional SA from scratch — the baseline the template
            placer must beat. Budget scales with the island count
            (40k moves per island, capped at the paper budget of 4M).
     cold   template composition against an EMPTY store: pays for
            canonicalising every motif and packing its Pareto family,
            then anneals the composition at an eighth of the SA budget
            (2 parallel restarts, the method default).
     warm   the same placement again with the store it just filled —
            the steady state of a template-enabled daemon, where every
            family lookup is a cache hit.

   The headline number is warm_speedup = sa_s / warm_s, reported with
   area / HPWL / FOM / legality so the speedup can be checked to be
   genuine (ISSUE 7's criterion: >= 3x on a >= 100-device circuit at
   equal or better constraint-feasible FOM).

   Usage: templates.exe [out.json]  *)

module Sa = Annealing.Sa_placer
module Store = Templates.Template_store
module Tp = Templates.Template_placer

let circuits = [ "CC-OTA"; "CM-OTA1"; "Scaled-120"; "Scaled-240" ]

type run = {
  r_s : float;
  r_area : float;
  r_hpwl : float;
  r_fom : float;
  r_viol : int;
}

let measure f =
  let t0 = Telemetry.now () in
  let layout, _cost = f () in
  let dt = Telemetry.now () -. t0 in
  {
    r_s = dt;
    r_area = Netlist.Layout.area layout;
    r_hpwl = Netlist.Layout.hpwl layout;
    r_fom = (Perfsim.Fom.evaluate layout).Perfsim.Fom.fom;
    r_viol = List.length (Netlist.Checks.all layout);
  }

type row = {
  name : string;
  devices : int;
  islands : int;
  sa_moves : int;
  sa : run;
  cold : run;
  warm : run;
  families : int;  (* distinct motifs the store holds afterwards *)
  warm_hits : int;  (* template-tier hits during the warm run *)
}

let bench name =
  let c = Circuits.Testcases.get_exn name in
  let devices = Array.length c.Netlist.Circuit.devices in
  let islands =
    List.length (Annealing.Island.decompose c)
  in
  let sa_moves = min Experiments.Methods.sa_default_moves (40_000 * islands) in
  let sa_params = { Sa.default_params with Sa.moves = sa_moves } in
  let tp_params =
    { Sa.default_params with Sa.moves = max 5_000 (sa_moves / 8); restarts = 2 }
  in
  let sa = measure (fun () -> Sa.place ~params:sa_params c) in
  let store = Store.create () in
  let cold = measure (fun () -> Tp.place ~params:tp_params ~store c) in
  let s0 = Store.stats store in
  let warm = measure (fun () -> Tp.place ~params:tp_params ~store c) in
  let s1 = Store.stats store in
  {
    name;
    devices;
    islands;
    sa_moves;
    sa;
    cold;
    warm;
    families = s1.Cache.size;
    warm_hits = s1.Cache.hits - s0.Cache.hits;
  }

let json_run tag r =
  Printf.sprintf
    {|"%s_s": %.3f, "%s_area": %.1f, "%s_hpwl": %.1f, "%s_fom": %.3f, "%s_violations": %d|}
    tag r.r_s tag r.r_area tag r.r_hpwl tag r.r_fom tag r.r_viol

let json_row b =
  Printf.sprintf
    {|    {
      "circuit": "%s",
      "devices": %d,
      "islands": %d,
      "sa_moves": %d,
      %s,
      %s,
      %s,
      "families": %d,
      "warm_template_hits": %d,
      "cold_speedup_vs_sa": %.2f,
      "warm_speedup_vs_sa": %.2f
    }|}
    b.name b.devices b.islands b.sa_moves (json_run "sa" b.sa)
    (json_run "cold" b.cold) (json_run "warm" b.warm) b.families b.warm_hits
    (b.sa.r_s /. Float.max 1e-9 b.cold.r_s)
    (b.sa.r_s /. Float.max 1e-9 b.warm.r_s)

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_templates.json"
  in
  let rows =
    List.map
      (fun name ->
        let b = bench name in
        Fmt.pr
          "%-11s %3dd %2di  sa %6.2fs fom %.3f | cold %5.2fs x%4.1f fom %.3f \
           | warm %5.2fs x%4.1f fom %.3f (%d fams, %d hits)@."
          b.name b.devices b.islands b.sa.r_s b.sa.r_fom b.cold.r_s
          (b.sa.r_s /. Float.max 1e-9 b.cold.r_s)
          b.cold.r_fom b.warm.r_s
          (b.sa.r_s /. Float.max 1e-9 b.warm.r_s)
          b.warm.r_fom b.families b.warm_hits;
        b)
      circuits
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"bench\": \"templates\",\n  \"note\": \"cold/warm motif template \
     cache vs conventional SA; warm_speedup_vs_sa is the headline\",\n\
     \  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  Fmt.pr "wrote %s@." out
