(* Before/after benchmark for the incremental SA cost engine.

   Runs the same annealing move/acceptance sequence twice per testcase,
   back to back in one process:

     before  every move is costed through [Eval.full_cost] — the
             historical path (quadratic sequence-pair pack, fresh
             layout, full Layout.hpwl / area / Checks fold);
     after   every move is costed through [Eval.cost] — the
             incremental path (Fenwick repack into scratch, dirty-net
             HPWL cache).

   The two paths are bit-identical per move, so with a shared seed both
   loops follow the exact same trajectory; the only difference is how
   the cost is obtained. Results are written to BENCH_sa_eval.json,
   including the sa.cache_hits / sa.full_repacks telemetry counters and
   a per-move FLOP proxy (pack comparisons + layout-rewrite stores +
   4 flops per net terminal evaluated).

   Usage: sa_eval.exe [moves-per-circuit] [out.json]  *)

module Eval = Annealing.Eval

let objective : Eval.objective =
  {
    Eval.area_weight = 1.0;
    wl_weight = 1.0;
    order_penalty = 40.0;
    perf = None;
    perf_alpha = 0.0;
  }

(* Fixed-schedule anneal loop mirroring Sa_placer's acceptance rule;
   [cost_of] selects the path under test. Returns (seconds, final cost)
   so the driver can assert the two paths agreed. *)
let run_loop ~moves ~cost_of (c : Netlist.Circuit.t) =
  let rng = Numerics.Rng.create 1 in
  let st = Eval.make_state rng c in
  let eng = Eval.make objective st in
  let current = ref (cost_of eng) in
  let temp = ref 0.05 in
  let w0 = Gc.minor_words () in
  let t0 = Telemetry.now () in
  for i = 1 to moves do
    Eval.propose eng rng;
    let c' = cost_of eng in
    let dc = c' -. !current in
    if dc <= 0.0 || Numerics.Rng.float rng < exp (-.dc /. !temp) then begin
      current := c';
      Eval.commit eng
    end
    else begin
      Eval.revert eng
    end;
    if i mod 500 = 0 then temp := !temp *. 0.96
  done;
  let dt = Telemetry.now () -. t0 in
  let words = Gc.minor_words () -. w0 in
  Eval.flush_counters eng;
  (dt, words, !current)

let cache_hits = Telemetry.Counter.make "sa.cache_hits"
let full_repacks = Telemetry.Counter.make "sa.full_repacks"

type row = {
  name : string;
  n_islands : int;
  n_active : int;
  before_s : float;
  after_s : float;
  hits : int;
  repacks : int;
  evals : int;
  nets_before : float;  (* active nets costed per move, full path *)
  nets_after : float;  (* dirty nets costed per move, incremental *)
  words_before : float;  (* minor heap words allocated per move *)
  words_after : float;
  flops_before : float;
  flops_after : float;
}

let bench ~moves name =
  let c = Circuits.Testcases.get_exn name in
  let view = Netlist.Netview.of_circuit c in
  let active = Netlist.Netview.active_nets view in
  let n_active = Array.length active in
  let terminals =
    Array.fold_left
      (fun acc e -> acc + Netlist.Netview.degree view e)
      0 active
  in
  let n_devices = Netlist.Netview.n_devices view in
  let n_islands =
    Array.length (Eval.make_state (Numerics.Rng.create 1) c).Eval.islands
  in
  let pairs =
    List.fold_left
      (fun acc (o : Netlist.Constraint_set.order_chain) ->
        acc + max 0 (List.length o.Netlist.Constraint_set.chain - 1))
      0 c.Netlist.Circuit.constraints.Netlist.Constraint_set.orders
  in
  let before_s, before_w, c_before =
    run_loop ~moves ~cost_of:Eval.full_cost c
  in
  let h0 = Telemetry.Counter.value cache_hits in
  let r0 = Telemetry.Counter.value full_repacks in
  let after_s, after_w, c_after = run_loop ~moves ~cost_of:Eval.cost c in
  let hits = Telemetry.Counter.value cache_hits - h0 in
  let repacks = Telemetry.Counter.value full_repacks - r0 in
  if Float.compare c_before c_after <> 0 then
    failwith
      (Printf.sprintf "%s: paths diverged (%.17g vs %.17g)" name c_before
         c_after);
  let evals = moves + 1 in
  let fi = float_of_int in
  let nets_before = fi n_active in
  let nets_after = fi ((evals * n_active) - hits) /. fi evals in
  let dirty_frac = nets_after /. Float.max 1.0 nets_before in
  (* Per-move FLOP proxy, counting every float op each path performs:
     pack (quadratic pair scan at ~1 compare-add per examined pair,
     both passes, vs the Fenwick query/update walks), layout rewrite
     (2 adds per device placed), bounding-box area (10 ops/device full,
     8 with the engine's precomputed half-sizes), HPWL (~11 ops per
     terminal: orientation-resolved pin position + min/max), the
     cache re-sum (1 add per active net) and the ordering pairs
     (~6 ops each). At paper-scale island counts the asymptotic gap is
     modest and dirty fractions run 60-80%, so the honest FLOP ratio
     is far below the wall-clock speedup: the clock wins come from the
     per-move allocation going to zero (see words_per_move). *)
  let log2n = Float.max 1.0 (Float.log (fi n_islands) /. Float.log 2.0) in
  let flops_before =
    (2.0 *. fi (n_islands * n_islands))
    +. (2.0 *. fi n_devices) (* realize into a fresh layout *)
    +. (10.0 *. fi n_devices) (* Layout.area bbox *)
    +. (11.0 *. fi terminals) (* Layout.hpwl pin positions + bbox *)
    +. (4.0 *. nets_before) (* per-net weight * span *)
    +. (6.0 *. fi pairs)
  in
  let flops_after =
    (fi n_islands *. ((4.0 *. log2n) +. 2.0)) (* Fenwick pack *)
    +. (2.0 *. fi n_devices *. dirty_frac) (* dirty-island rewrite *)
    +. (8.0 *. fi n_devices) (* arena bbox, precomputed half-sizes *)
    +. (11.0 *. fi terminals *. dirty_frac) (* dirty-net HPWL *)
    +. (4.0 *. nets_before *. dirty_frac)
    +. nets_before (* cache re-sum *)
    +. (6.0 *. fi pairs)
  in
  {
    name;
    n_islands;
    n_active;
    before_s;
    after_s;
    hits;
    repacks;
    evals;
    nets_before;
    nets_after;
    words_before = before_w /. fi moves;
    words_after = after_w /. fi moves;
    flops_before;
    flops_after;
  }

let json_row b ~moves =
  let mps s = float_of_int moves /. s in
  Printf.sprintf
    {|    {
      "circuit": "%s",
      "islands": %d,
      "active_nets": %d,
      "moves": %d,
      "before_moves_per_s": %.0f,
      "after_moves_per_s": %.0f,
      "speedup": %.2f,
      "cache_hits": %d,
      "full_repacks": %d,
      "evals": %d,
      "nets_per_move_before": %.2f,
      "nets_per_move_after": %.2f,
      "words_per_move_before": %.1f,
      "words_per_move_after": %.1f,
      "alloc_ratio": %.1f,
      "flops_per_move_before": %.1f,
      "flops_per_move_after": %.1f,
      "flops_ratio": %.2f
    }|}
    b.name b.n_islands b.n_active moves (mps b.before_s) (mps b.after_s)
    (b.before_s /. b.after_s) b.hits b.repacks b.evals b.nets_before
    b.nets_after b.words_before b.words_after
    (b.words_before /. Float.max 1e-9 b.words_after)
    b.flops_before b.flops_after
    (b.flops_before /. b.flops_after)

let () =
  let moves =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else 200_000
  in
  let out =
    if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_sa_eval.json"
  in
  let rows =
    List.map
      (fun name ->
        let b = bench ~moves name in
        Fmt.pr "%-8s before %8.0f moves/s  after %8.0f moves/s  x%.2f  flops x%.2f@."
          b.name
          (float_of_int moves /. b.before_s)
          (float_of_int moves /. b.after_s)
          (b.before_s /. b.after_s)
          (b.flops_before /. b.flops_after);
        b)
      Circuits.Testcases.all_names
  in
  let geomean f =
    exp
      (List.fold_left (fun acc b -> acc +. Float.log (f b)) 0.0 rows
      /. float_of_int (List.length rows))
  in
  let speedup_gm = geomean (fun b -> b.before_s /. b.after_s) in
  let flops_gm = geomean (fun b -> b.flops_before /. b.flops_after) in
  let alloc_gm =
    geomean (fun b -> b.words_before /. Float.max 1e-9 b.words_after)
  in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  "bench": "sa_eval",
  "description": "per-move SA cost: full recompute (quadratic pack + fresh layout + full HPWL) vs incremental engine (Fenwick repack + dirty-net cache), same seed and trajectory, one process",
  "moves_per_circuit": %d,
  "geomean_speedup": %.2f,
  "geomean_alloc_ratio": %.1f,
  "geomean_flops_ratio": %.2f,
  "rows": [
%s
  ]
}
|}
    moves speedup_gm alloc_gm flops_gm
    (String.concat ",\n" (List.map (json_row ~moves) rows));
  close_out oc;
  Fmt.pr "geomean speedup x%.2f, alloc ratio x%.1f, flops ratio x%.2f -> %s@."
    speedup_gm alloc_gm flops_gm out
