(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (text output), and exposes Bechamel
   micro-benchmarks of each experiment's computational kernel.

   Usage:
     main.exe                 run all tables and figures (full budgets)
     main.exe --quick         trimmed budgets (smoke run)
     main.exe table3 fig5     run a subset
     main.exe --jobs N        domains for the parallel fan-outs
                              (default: Domain.recommended_domain_count)
     main.exe --check-eval N  SA debug: cross-check the incremental cost
                              engine every N evaluations (0 = off)
     main.exe --micro         run the Bechamel kernel benchmarks
*)

let say fmt = Fmt.pr fmt

let banner title paper_claim =
  say "@.============================================================@.";
  say "%s@." title;
  say "paper: %s@." paper_claim;
  say "============================================================@."

let run_table1 cfg =
  banner "Table I: soft vs hard symmetry constraints in GP"
    "hard symmetry increases both area and wirelength";
  Experiments.Table_fmt.render Fmt.stdout (Experiments.Run.table1 cfg)

let run_fig2 cfg =
  banner "Fig. 2: area term ablation"
    "dropping the area term costs >20% area and wirelength";
  Experiments.Table_fmt.render Fmt.stdout (Experiments.Run.fig2 cfg)

let run_table3 cfg =
  banner "Table III: conventional comparison (SA / prev [11] / ePlace-A)"
    "avg ratios vs ePlace-A: SA 1.11x area, 1.14x HPWL, 55x runtime; \
     [11] 1.25x area, 1.24x HPWL";
  let t, results = Experiments.Run.table3 cfg in
  Experiments.Table_fmt.render Fmt.stdout t;
  say "@.per-phase runtime breakdown (s):@.";
  Experiments.Table_fmt.render Fmt.stdout
    (Experiments.Run.phase_table [ "SA"; "P11"; "eP"; "Tmpl"; "Math" ] results)

let run_table4 cfg =
  banner "Table IV: detailed placement only, same GP input"
    "ILP DP beats the two-stage LP DP on wirelength (flipping)";
  Experiments.Table_fmt.render Fmt.stdout (Experiments.Run.table4 cfg)

let run_table5 cfg =
  banner "Table V: FOM, conventional vs performance-driven"
    "avg FOM 0.81 conventional; 0.87 SA-perf, 0.88 perf*, 0.90 ePlace-AP";
  let t, _ = Experiments.Run.table5 cfg in
  Experiments.Table_fmt.render Fmt.stdout t

let run_table6 cfg =
  banner "Table VI: CC-OTA detailed metrics"
    "ePlace-AP recovers UGF/BW at a small phase-margin cost";
  Experiments.Table_fmt.render Fmt.stdout (Experiments.Run.table6 cfg)

let run_table7 cfg =
  banner "Table VII: performance-driven area/HPWL/runtime"
    "avg ratios vs ePlace-AP: SA-perf 1.09x area, 3.09x runtime; \
     perf* 1.14x area, 1.13x HPWL";
  let t, results = Experiments.Run.table7 cfg in
  Experiments.Table_fmt.render Fmt.stdout t;
  say "@.per-phase runtime breakdown (s; GNN = offline setup):@.";
  Experiments.Table_fmt.render Fmt.stdout
    (Experiments.Run.phase_table [ "SAp"; "P11p"; "ePAP"; "Tmplp"; "Mathp" ] results)

let run_fig5 cfg =
  banner "Fig. 5: HPWL-area tradeoff points on CM-OTA1"
    "ePlace-A's points dominate toward the lower-left corner";
  let t, pts = Experiments.Run.fig5 cfg in
  Experiments.Table_fmt.render Fmt.stdout t;
  (* quick dominance summary *)
  let by m = List.filter (fun p -> p.Experiments.Run.p_method = m) pts in
  let pareto_wins name =
    let mine = by name in
    let others =
      List.filter (fun p -> p.Experiments.Run.p_method <> name) pts
    in
    List.length
      (List.filter
         (fun (o : Experiments.Run.point) ->
           List.exists
             (fun (p : Experiments.Run.point) ->
               p.Experiments.Run.p_x <= o.Experiments.Run.p_x
               && p.Experiments.Run.p_y <= o.Experiments.Run.p_y)
             mine)
         others)
  in
  say "points from other methods dominated by an ePlace-A point: %d / %d@."
    (pareto_wins "ePlace-A")
    (List.length pts - List.length (by "ePlace-A"))

let run_fig6 cfg =
  banner "Fig. 6: FOM-area tradeoff points on CM-OTA1"
    "best FOM-area tradeoffs come from ePlace-AP";
  let t, _ = Experiments.Run.fig6 cfg in
  Experiments.Table_fmt.render Fmt.stdout t

let run_ablations cfg =
  banner "Ablations: ePlace-A design choices (beyond the paper)"
    "WA vs LSE, flipping strategy, restarts, bins, DP passes";
  Experiments.Table_fmt.render Fmt.stdout (Experiments.Run.ablations cfg)

let run_scaling cfg =
  banner "Scaling: SA vs ePlace-A on growing ring VCOs (beyond the paper)"
    "the analytical paradigm's advantage should widen with device count";
  Experiments.Table_fmt.render Fmt.stdout (Experiments.Run.scaling cfg)

let all_experiments =
  [ ("table1", run_table1); ("fig2", run_fig2); ("table3", run_table3);
    ("table4", run_table4); ("table5", run_table5); ("table6", run_table6);
    ("table7", run_table7); ("fig5", run_fig5); ("fig6", run_fig6);
    ("ablations", run_ablations); ("scaling", run_scaling) ]

(* ---- Bechamel kernels: one Test.make per table/figure ---- *)

let micro () =
  let open Bechamel in
  let cc_ota = Circuits.Testcases.get_exn "CC-OTA" in
  let cm_ota1 = Circuits.Testcases.get_exn "CM-OTA1" in
  let gp_layout =
    lazy (Eplace.Global_place.run cc_ota).Eplace.Global_place.layout
  in
  let enc = lazy (Gnn.Graph_enc.of_circuit cc_ota) in
  let model = lazy (Gnn.Model.create (Numerics.Rng.create 1)) in
  let tests =
    [
      (* Table I kernel: one GP run with soft symmetry *)
      Test.make ~name:"table1:gp_soft"
        (Staged.stage (fun () -> ignore (Eplace.Global_place.run cc_ota)));
      (* Fig 2 kernel: GP without the area term *)
      Test.make ~name:"fig2:gp_no_area"
        (Staged.stage (fun () ->
             let params =
               { Eplace.Gp_params.default with Eplace.Gp_params.eta = 0.0 }
             in
             ignore (Eplace.Global_place.run ~params cc_ota)));
      (* Table III kernel: one full ePlace-A pipeline, single restart *)
      Test.make ~name:"table3:eplace_a_1restart"
        (Staged.stage (fun () ->
             let params =
               { Eplace.Eplace_a.default_params with
                 Eplace.Eplace_a.restarts = 1; dp_passes = 1 }
             in
             ignore (Eplace.Eplace_a.place ~params cc_ota)));
      (* Table IV kernel: one ILP detailed placement *)
      Test.make ~name:"table4:ilp_dp"
        (Staged.stage (fun () ->
             ignore (Eplace.Dp_ilp.run cc_ota ~gp:(Lazy.force gp_layout))));
      (* Table V kernel: GNN inference *)
      Test.make ~name:"table5:gnn_inference"
        (Staged.stage (fun () ->
             let l = Lazy.force gp_layout in
             ignore
               (Gnn.Model.predict (Lazy.force model) (Lazy.force enc)
                  ~xs:l.Netlist.Layout.xs ~ys:l.Netlist.Layout.ys)));
      (* Table VI kernel: full FOM evaluation (route+extract+model) *)
      Test.make ~name:"table6:fom_eval"
        (Staged.stage (fun () ->
             ignore (Perfsim.Fom.evaluate (Lazy.force gp_layout))));
      (* Table VII kernel: GNN gradient (the expensive perf-driven step) *)
      Test.make ~name:"table7:gnn_gradient"
        (Staged.stage (fun () ->
             let l = Lazy.force gp_layout in
             let n = Netlist.Layout.n_devices l in
             let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
             ignore
               (Gnn.Model.phi_grad (Lazy.force model) (Lazy.force enc)
                  ~alpha:1.0 ~xs:l.Netlist.Layout.xs ~ys:l.Netlist.Layout.ys
                  ~gx ~gy)));
      (* Fig 5 kernel: SA move batch on CM-OTA1 *)
      Test.make ~name:"fig5:sa_10k_moves"
        (Staged.stage (fun () ->
             let params =
               { Annealing.Sa_placer.default_params with
                 Annealing.Sa_placer.moves = 10_000 }
             in
             ignore (Annealing.Sa_placer.place ~params cm_ota1)));
      (* Fig 6 kernel: spectral Poisson solve (per-GP-iteration cost) *)
      Test.make ~name:"fig6:poisson_32x32"
        (Staged.stage (fun () ->
             let sp = Numerics.Spectral.create ~nx:32 ~ny:32 in
             let rho =
               Numerics.Matrix.init 32 32 (fun i j ->
                   float_of_int ((i * 7) + j) /. 100.0)
             in
             ignore (Numerics.Spectral.solve_poisson sp rho)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let stats = analyze results in
      Hashtbl.to_seq stats |> List.of_seq
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, ols) ->
             match Analyze.OLS.estimates ols with
             | Some [ t ] -> say "%-28s %12.0f ns/run@." name t
             | Some _ | None -> say "%-28s (no estimate)@." name))
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* consume "--jobs N" before the experiment-name scan so the count is
     not mistaken for an experiment *)
  let jobs = ref (Domain.recommended_domain_count ()) in
  let rec strip_jobs = function
    | "--jobs" :: n :: tl -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            strip_jobs tl
        | Some _ | None ->
            Fmt.epr "--jobs expects a positive integer@.";
            exit 1)
    | [ "--jobs" ] ->
        Fmt.epr "--jobs expects a positive integer@.";
        exit 1
    | a :: tl -> a :: strip_jobs tl
    | [] -> []
  in
  let args = strip_jobs args in
  Pool.set_default_jobs !jobs;
  (* "--check-eval N" follows the same pattern: SA debug cross-check *)
  let check_eval = ref 0 in
  let rec strip_check_eval = function
    | "--check-eval" :: n :: tl -> (
        match int_of_string_opt n with
        | Some k when k >= 0 ->
            check_eval := k;
            strip_check_eval tl
        | Some _ | None ->
            Fmt.epr "--check-eval expects a non-negative integer@.";
            exit 1)
    | [ "--check-eval" ] ->
        Fmt.epr "--check-eval expects a non-negative integer@.";
        exit 1
    | a :: tl -> a :: strip_check_eval tl
    | [] -> []
  in
  let args = strip_check_eval args in
  let quick = List.mem "--quick" args in
  let micro_mode = List.mem "--micro" args in
  let wanted =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  if micro_mode then micro ()
  else begin
    let cfg =
      if quick then Experiments.Run.quick_cfg else Experiments.Run.default_cfg
    in
    let cfg = { cfg with Experiments.Run.check_eval = !check_eval } in
    let to_run =
      if wanted = [] then all_experiments
      else List.filter (fun (name, _) -> List.mem name wanted) all_experiments
    in
    if to_run = [] then begin
      say "unknown experiment; available:@.";
      List.iter (fun (n, _) -> say "  %s@." n) all_experiments;
      exit 1
    end;
    say "jobs: %d@." !jobs;
    let t0 = Telemetry.now () in
    List.iter (fun (_, f) -> f cfg) to_run;
    say "@.total wall time: %.1f s@." (Telemetry.now () -. t0)
  end
